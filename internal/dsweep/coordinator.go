package dsweep

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bfdn/internal/jobstore"
	"bfdn/internal/obs/tracing"
)

// shard is one contiguous range [lo,hi) of the plan's points: the unit of
// dispatch, retry, failover and hedging. All mutable fields are guarded by
// the coordinator mutex.
type shard struct {
	lo, hi int
	// attempts counts failure dispatches, busyTries busy ones; each has its
	// own budget (Options.MaxAttempts / MaxBusyRetries).
	attempts  int
	busyTries int
	// excluded holds workers that failed this shard; the queue skips them
	// so a retry lands elsewhere (failover). When every live worker is
	// excluded the set resets — better a second chance than a stall.
	excluded map[string]bool
	// runners holds workers currently executing the shard, inflight their
	// count (> 1 only while hedged); done marks the winning completion.
	runners  map[string]bool
	inflight int
	hedged   bool
	done     bool
	// cancels aborts in-flight attempt contexts once a copy wins, so a
	// hedge loser stops burning a worker.
	cancels []context.CancelFunc
}

// partition cuts n points into contiguous shards. The target is
// Options.Oversub shards per fleet dispatch slot — enough queue depth for
// work stealing to absorb speed differences and failover to re-spread a
// dead worker's load — capped by Options.MaxShardPoints and by the smallest
// maxPoints any worker advertises.
func partition(n int, fleet []*workerState, opts Options) []*shard {
	return cutShards(n, shardSize(n, fleet, opts))
}

// shardSize picks the shard size for n points against the probed fleet (see
// partition). Resumable runs journal this size and reuse it on resume, so
// the cut stays a pure function of the plan even if the fleet changes.
func shardSize(n int, fleet []*workerState, opts Options) int {
	slots, minMax := 0, 0
	for _, w := range fleet {
		slots += w.conc
		if w.cap.MaxPoints > 0 && (minMax == 0 || w.cap.MaxPoints < minMax) {
			minMax = w.cap.MaxPoints
		}
	}
	size := (n + opts.Oversub*slots - 1) / (opts.Oversub * slots)
	if size > opts.MaxShardPoints {
		size = opts.MaxShardPoints
	}
	if minMax > 0 && size > minMax {
		size = minMax
	}
	if size < 1 {
		size = 1
	}
	return size
}

// cutShards tiles [0,n) into contiguous shards of the given size.
func cutShards(n, size int) []*shard {
	shards := make([]*shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		shards = append(shards, &shard{lo: lo, hi: min(lo+size, n),
			excluded: map[string]bool{}, runners: map[string]bool{}})
	}
	return shards
}

// coord is the run state: a work queue drained by per-worker goroutines,
// with a condition variable tying dispatch, retry and completion together.
type coord struct {
	ctx    context.Context
	cancel context.CancelFunc
	plan   Plan
	opts   Options
	fleet  []*workerState
	shards []*shard
	merge  *merger
	// job, when non-nil, is the run's persistent journal: every winning
	// shard is appended (and fsynced) before its lines reach the merger.
	job *jobstore.Job

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*shard
	remaining int
	live      int
	err       error

	retries, failovers, hedges, deadWorkers int
	shardsBy                                map[string]int
}

func newCoord(ctx context.Context, plan Plan, shards []*shard, fleet []*workerState, opts Options) *coord {
	cctx, cancel := context.WithCancel(ctx)
	// Shards already marked done (replayed from a resumed job's journal)
	// never enter the queue; only the rest count toward completion.
	queue := make([]*shard, 0, len(shards))
	for _, s := range shards {
		if !s.done {
			queue = append(queue, s)
		}
	}
	c := &coord{
		ctx: cctx, cancel: cancel, plan: plan, opts: opts,
		fleet: fleet, shards: shards,
		merge:     newMerger(opts.OnLine, opts.Metrics),
		queue:     queue,
		remaining: len(queue),
		live:      len(fleet),
		shardsBy:  map[string]int{},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// run drives the fleet until the plan completes or a fatal error stops it,
// then folds the counters into stats and returns the merged lines.
func (c *coord) run(stats *Stats) []Line {
	defer c.cancel()
	c.opts.Metrics.queueDepth(len(c.queue))
	var wg sync.WaitGroup
	for _, w := range c.fleet {
		for i := 0; i < w.conc; i++ {
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				c.workerLoop(w)
			}(w)
		}
	}

	// A canceled caller context must abort in-flight worker requests even
	// while every goroutine is parked in cond.Wait.
	stop := make(chan struct{})
	go func() {
		select {
		case <-c.ctx.Done():
			c.mu.Lock()
			if c.err == nil && c.remaining > 0 {
				c.err = c.ctx.Err()
			}
			c.mu.Unlock()
			c.cond.Broadcast()
		case <-stop:
		}
	}()
	wg.Wait()
	close(stop)

	c.mu.Lock()
	stats.Retries = c.retries
	stats.Failovers = c.failovers
	stats.Hedges = c.hedges
	stats.DeadWorkers = c.deadWorkers
	for u, n := range c.shardsBy {
		stats.ShardsByWorker[u] = n
	}
	c.mu.Unlock()
	return c.merge.lines()
}

// fatal reports the run's terminal error, nil when the plan completed.
func (c *coord) fatal() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// workerLoop pulls shards for w until the run ends or w is declared dead.
// After a failed or busy attempt the loop backs off (exponential with
// jitter) before pulling again, so a struggling worker does not hammer
// itself while the others keep draining the queue.
func (c *coord) workerLoop(w *workerState) {
	for {
		s := c.next(w)
		if s == nil {
			return
		}
		actx, acancel := context.WithCancel(c.ctx)
		c.mu.Lock()
		s.cancels = append(s.cancels, acancel)
		// A second concurrent copy of the shard means this dispatch is the
		// hedge duplicate; the flag only decorates the span and log record.
		hedge := s.inflight > 1
		c.mu.Unlock()
		// One span per attempt, all siblings under dsweep.run: retries and
		// hedge duplicates of a shard are separate spans on one trace, which
		// is what makes a straggler's timeline legible after the fact.
		sctx, span := tracing.Start(actx, "dsweep.dispatch",
			tracing.String("worker", w.url), tracing.Int("lo", s.lo),
			tracing.Int("hi", s.hi))
		if hedge {
			span.SetAttr(tracing.String("hedge", "true"))
		}
		start := time.Now()
		lines, job, aerr := runShard(sctx, c.opts.Client, w, c.plan, s, c.opts)
		span.SetAttr(tracing.String("outcome", attemptOutcome(aerr)))
		span.End()
		acancel()
		backoff := c.complete(w, s, lines, aerr, time.Since(start))
		if aerr == nil && c.opts.Logger != nil {
			c.opts.Logger.Info("shard done", "worker", w.url, "lo", s.lo, "hi", s.hi,
				"job", job, "hedge", hedge, "elapsedMs", time.Since(start).Milliseconds())
		}
		if backoff > 0 {
			select {
			case <-c.ctx.Done():
				return
			case <-time.After(backoff):
			}
		}
	}
}

// attemptOutcome names an attempt's result for span attributes.
func attemptOutcome(aerr *attemptError) string {
	switch {
	case aerr == nil:
		return "ok"
	case aerr.busy:
		return "busy"
	case aerr.fatal:
		return "fatal"
	default:
		return "error"
	}
}

// next blocks until there is a shard for w — from the queue, or (with
// hedging on) a straggler worth duplicating — or the run is over for w
// (plan drained, fatal error, worker dead, context canceled).
func (c *coord) next(w *workerState) *shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.err != nil || c.remaining == 0 || w.dead || c.ctx.Err() != nil {
			return nil
		}
		for i, s := range c.queue {
			if !s.excluded[w.url] {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				c.startLocked(s, w)
				return s
			}
		}
		if c.unstickLocked() {
			continue
		}
		if c.opts.Hedge && len(c.queue) == 0 {
			if s := c.hedgeCandidateLocked(w); s != nil {
				s.hedged = true
				c.hedges++
				c.opts.Metrics.hedge()
				c.startLocked(s, w)
				if c.opts.Logger != nil {
					c.opts.Logger.Info("shard hedged", "worker", w.url,
						"lo", s.lo, "hi", s.hi)
				}
				return s
			}
		}
		c.cond.Wait()
	}
}

func (c *coord) startLocked(s *shard, w *workerState) {
	s.inflight++
	s.runners[w.url] = true
	c.opts.Metrics.inflight(w.url, +1)
	c.opts.Metrics.queueDepth(len(c.queue))
}

// unstickLocked clears the exclusion set of any queued shard that every
// live worker has failed: a retry anywhere beats a permanent stall. It
// reports whether anything changed.
func (c *coord) unstickLocked() bool {
	changed := false
	for _, s := range c.queue {
		if len(s.excluded) == 0 {
			continue
		}
		stuck := true
		for _, w := range c.fleet {
			if !w.dead && !s.excluded[w.url] {
				stuck = false
				break
			}
		}
		if stuck {
			s.excluded = map[string]bool{}
			changed = true
		}
	}
	return changed
}

// hedgeCandidateLocked picks the oldest in-flight shard w could duplicate:
// not yet hedged, not already running on w, not previously failed by w.
func (c *coord) hedgeCandidateLocked(w *workerState) *shard {
	for _, s := range c.shards {
		if !s.done && s.inflight > 0 && !s.hedged && !s.runners[w.url] && !s.excluded[w.url] {
			return s
		}
	}
	return nil
}

// complete settles one attempt and returns how long the worker should back
// off before its next pull (0 = none). Exactly one attempt per shard wins;
// late duplicates (hedge losers, attempts canceled after the win) are
// discarded without side effects on retry budgets or worker health.
func (c *coord) complete(w *workerState, s *shard, lines []Line, aerr *attemptError, elapsed time.Duration) time.Duration {
	c.mu.Lock()
	s.inflight--
	delete(s.runners, w.url)
	c.opts.Metrics.inflight(w.url, -1)

	if s.done || c.err != nil {
		c.mu.Unlock()
		c.opts.Metrics.shard(w.url, "discard", elapsed)
		c.cond.Broadcast()
		return 0
	}

	if aerr == nil {
		s.done = true
		c.remaining--
		w.consecFails = 0
		c.shardsBy[w.url]++
		if len(s.excluded) > 0 {
			// The shard failed elsewhere and completed here: a failover.
			c.failovers++
			c.opts.Metrics.failover()
		}
		for _, cf := range s.cancels {
			cf()
		}
		s.cancels = nil
		c.mu.Unlock()
		c.opts.Metrics.shard(w.url, "ok", elapsed)
		// Journal before merge: once a line is visible to OnLine it must be
		// durable, or a crash after emission could resume with a hole. The
		// append fsyncs; failure to journal is fatal for the run (delivering
		// unjournaled lines would break the invariant).
		if c.job != nil {
			if err := c.job.Append(shardRecord{T: "shard", Lo: s.lo, Lines: lines}); err != nil {
				c.mu.Lock()
				c.failLocked(fmt.Errorf("dsweep: journal shard [%d,%d): %w", s.lo, s.hi, err))
				c.mu.Unlock()
				c.cond.Broadcast()
				return 0
			}
		}
		// Merging outside the coordinator lock keeps a slow OnLine callback
		// from stalling dispatch; the merger has its own ordering lock.
		mergeStart := time.Now()
		c.merge.deliver(s.lo, lines)
		tracing.Record(c.ctx, "dsweep.merge", mergeStart, time.Now(),
			tracing.Int("lo", s.lo), tracing.Int("lines", len(lines)))
		c.cond.Broadcast()
		return 0
	}

	// The whole run was canceled: the attempt's error is just the echo.
	if c.ctx.Err() != nil {
		if c.err == nil {
			c.err = c.ctx.Err()
		}
		c.mu.Unlock()
		c.opts.Metrics.shard(w.url, "discard", elapsed)
		c.cond.Broadcast()
		return 0
	}

	var backoff time.Duration
	died := false
	switch {
	case aerr.fatal:
		c.failLocked(aerr.err)
	case aerr.busy:
		s.busyTries++
		c.retries++
		c.opts.Metrics.retry()
		c.opts.Metrics.shard(w.url, "busy", elapsed)
		if s.busyTries > c.opts.MaxBusyRetries {
			c.failLocked(fmt.Errorf("dsweep: shard [%d,%d): still busy after %d retries: %w", s.lo, s.hi, s.busyTries-1, aerr.err))
		} else {
			c.requeueLocked(s)
			backoff = backoffDur(c.opts, s.busyTries)
		}
	default:
		s.attempts++
		c.retries++
		s.excluded[w.url] = true
		w.consecFails++
		c.opts.Metrics.retry()
		c.opts.Metrics.shard(w.url, "error", elapsed)
		if w.consecFails >= c.opts.WorkerFailLimit && !w.dead {
			w.dead = true
			died = true
			c.live--
			c.deadWorkers++
			c.opts.Metrics.workerDead()
		}
		switch {
		case c.live == 0:
			c.failLocked(fmt.Errorf("dsweep: all workers failed; last error: %w", aerr.err))
		case s.attempts >= c.opts.MaxAttempts:
			c.failLocked(fmt.Errorf("dsweep: shard [%d,%d) failed %d times, giving up: %w", s.lo, s.hi, s.attempts, aerr.err))
		default:
			c.requeueLocked(s)
			backoff = backoffDur(c.opts, s.attempts)
		}
	}
	fails := w.consecFails
	c.mu.Unlock()
	if c.opts.Logger != nil {
		// The job key is the worker's X-Bfdnd-Job ID (empty when the attempt
		// never reached admission): grep it on the worker to see the same
		// attempt from the other side.
		c.opts.Logger.Warn("shard retry", "worker", w.url, "lo", s.lo, "hi", s.hi,
			"job", aerr.job, "outcome", attemptOutcome(aerr), "err", aerr.err)
		if died {
			c.opts.Logger.Warn("worker dead", "worker", w.url,
				"consecFails", fails)
		}
	}
	c.cond.Broadcast()
	return backoff
}

// requeueLocked puts a failed shard back on the queue unless a hedged copy
// is still running it (that copy will requeue if it fails too).
func (c *coord) requeueLocked(s *shard) {
	if s.inflight > 0 {
		return
	}
	c.queue = append(c.queue, s)
	c.unstickLocked()
	c.opts.Metrics.queueDepth(len(c.queue))
}

// failLocked records the run's first fatal error and aborts every in-flight
// request via the shared context.
func (c *coord) failLocked(err error) {
	if c.err == nil {
		c.err = err
		c.cancel()
	}
}

// backoffDur is exponential backoff with jitter: attempt n sleeps in
// [d/2, d] for d = min(RetryBase·2ⁿ⁻¹, RetryMax). Jitter decorrelates
// retries across workers; it never influences results, only timing.
func backoffDur(opts Options, attempt int) time.Duration {
	d := opts.RetryMax
	if attempt-1 < 20 {
		if b := opts.RetryBase << uint(attempt-1); b > 0 && b < d {
			d = b
		}
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
