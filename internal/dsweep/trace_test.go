package dsweep_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"bfdn/internal/dsweep"
	"bfdn/internal/obs/tracing"
	"bfdn/internal/server"
)

// fleetSpan mirrors the JSONL line shape shared by the coordinator tracer's
// WriteJSONL and the workers' GET /debug/traces exports.
type fleetSpan struct {
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent"`
	Name   string            `json:"name"`
	Attrs  map[string]string `json:"attrs"`
}

// exportSpans decodes one JSONL span stream.
func exportSpans(t *testing.T, r io.Reader) []fleetSpan {
	t.Helper()
	var spans []fleetSpan
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		var sp fleetSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// workerSpans pulls one worker's spans for a single trace from its
// GET /debug/traces export — the reassembly path an operator uses, keyed by
// nothing but the trace ID.
func workerSpans(t *testing.T, url, trace string) []fleetSpan {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces?trace=" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s/debug/traces: status %d", url, resp.StatusCode)
	}
	return exportSpans(t, resp.Body)
}

// TestFleetTraceReassembly is the distributed acceptance scenario: a traced
// coordinator run against a two-worker fleet produces ONE trace — the
// coordinator's dispatch and merge spans plus, on each worker, the
// admission→run span tree continued from the dispatch's traceparent — and
// the whole timeline reassembles from the workers' /debug/traces exports by
// trace ID alone.
func TestFleetTraceReassembly(t *testing.T) {
	// One tracer per worker: each daemon owns its ring, exactly as separate
	// bfdnd processes would.
	tracedWorker := func() server.Config {
		return server.Config{
			MaxJobs: 2, SweepWorkers: 2,
			Tracer: tracing.New(tracing.Config{SampleEvery: 1}),
		}
	}
	urls := []string{
		startWorker(t, tracedWorker(), nil),
		startWorker(t, tracedWorker(), nil),
	}
	plan := testPlan(12)
	tracer := tracing.New(tracing.Config{Seed: 3})

	lines, stats, err := dsweep.Run(context.Background(), plan, urls,
		dsweep.Options{MaxShardPoints: 3, Tracer: tracer})
	if err != nil {
		t.Fatalf("Run: %v (stats: %s)", err, stats)
	}
	requireIdentical(t, plan, lines)

	// The coordinator half: one dsweep.run root owning probe, partition,
	// every dispatch, and one merge record per shard.
	coord := tracer.Spans(tracing.TraceID{})
	roots := map[string]string{} // span ID → trace, for the root only
	var trace string
	byName := map[string][]fleetSpan{}
	dispatchSpan := map[string]bool{}
	for _, sp := range coord {
		fs := fleetSpan{Trace: sp.Trace.String(), Span: sp.ID.String(),
			Name: sp.Name}
		if !sp.Parent.IsZero() {
			fs.Parent = sp.Parent.String()
		}
		byName[fs.Name] = append(byName[fs.Name], fs)
		if fs.Name == "dsweep.run" {
			roots[fs.Span] = fs.Trace
			trace = fs.Trace
		}
		if fs.Name == "dsweep.dispatch" {
			dispatchSpan[fs.Span] = true
		}
	}
	if len(roots) != 1 {
		t.Fatalf("dsweep.run roots = %d, want 1", len(roots))
	}
	for _, name := range []string{"dsweep.probe", "dsweep.partition"} {
		if len(byName[name]) != 1 {
			t.Fatalf("%s spans = %d, want 1", name, len(byName[name]))
		}
	}
	if got := len(byName["dsweep.dispatch"]); got != stats.Shards {
		t.Fatalf("dispatch spans = %d, want one per shard (%d)", got, stats.Shards)
	}
	if got := len(byName["dsweep.merge"]); got != stats.Shards {
		t.Fatalf("merge spans = %d, want one per shard (%d)", got, stats.Shards)
	}
	for _, sp := range coord {
		if sp.Trace.String() != trace {
			t.Fatalf("coordinator span %s escaped trace %s", sp.Name, trace)
		}
	}

	// The worker halves: every shard's bfdnd.sweep job span carries the
	// coordinator's trace ID and hangs off one of its dispatch spans, and
	// both workers contributed (each completed at least one shard).
	jobsSeen := 0
	for _, url := range urls {
		spans := workerSpans(t, url, trace)
		if len(spans) == 0 {
			t.Errorf("worker %s exported no spans for trace %s", url, trace)
			continue
		}
		jobSpan := map[string]bool{}
		for _, sp := range spans {
			if sp.Name == "bfdnd.sweep" {
				if !dispatchSpan[sp.Parent] {
					t.Errorf("worker job %s has parent %q — not a coordinator dispatch span",
						sp.Span, sp.Parent)
				}
				jobSpan[sp.Span] = true
				jobsSeen++
			}
		}
		// Each job's queue/run children close the admission→run chain.
		runs := 0
		for _, sp := range spans {
			if sp.Name == "bfdnd.run" {
				if !jobSpan[sp.Parent] {
					t.Errorf("bfdnd.run parent %q is not a job span", sp.Parent)
				}
				runs++
			}
		}
		if runs == 0 {
			t.Errorf("worker %s has job spans but no bfdnd.run children", url)
		}
	}
	if jobsSeen != stats.Shards {
		t.Errorf("worker job spans = %d, want one per shard (%d)", jobsSeen, stats.Shards)
	}
}

// TestFleetTraceHedgeSiblings pins the hedge shape: when an idle worker
// duplicates a straggler shard, both attempts appear as sibling
// dsweep.dispatch spans under the one dsweep.run root, the duplicate marked
// hedge=true.
func TestFleetTraceHedgeSiblings(t *testing.T) {
	healthy := startWorker(t, server.Config{MaxJobs: 2, SweepWorkers: 2}, nil)
	release := make(chan struct{})
	stuck := startWorker(t, server.Config{MaxJobs: 2, SweepWorkers: 2},
		func(w http.ResponseWriter, r *http.Request, inner http.Handler, sweepN int64) {
			if sweepN == 1 {
				io.Copy(io.Discard, r.Body)
				select {
				case <-r.Context().Done():
				case <-release:
				}
				return
			}
			inner.ServeHTTP(w, r)
		})
	t.Cleanup(func() { close(release) })
	plan := testPlan(8)
	tracer := tracing.New(tracing.Config{Seed: 5})

	lines, stats, err := dsweep.Run(context.Background(), plan, []string{healthy, stuck},
		fastRetry(dsweep.Options{
			MaxShardPoints:    2,
			InflightPerWorker: 1,
			Hedge:             true,
			Tracer:            tracer,
		}))
	if err != nil {
		t.Fatalf("Run: %v (stats: %s)", err, stats)
	}
	requireIdentical(t, plan, lines)
	if stats.Hedges < 1 {
		t.Fatalf("Hedges = %d, want ≥ 1", stats.Hedges)
	}

	// Group dispatch spans by shard range: the hedged shard has two sibling
	// attempts under the same parent, exactly one marked as the hedge.
	var rootSpan string
	type attempt struct{ parent, hedge string }
	byShard := map[string][]attempt{}
	for _, sp := range tracer.Spans(tracing.TraceID{}) {
		switch sp.Name {
		case "dsweep.run":
			rootSpan = sp.ID.String()
		case "dsweep.dispatch":
			attrs := map[string]string{}
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
			key := attrs["lo"] + "-" + attrs["hi"]
			byShard[key] = append(byShard[key], attempt{
				parent: sp.Parent.String(), hedge: attrs["hedge"]})
		}
	}
	hedgedShards := 0
	for key, atts := range byShard {
		hedges := 0
		for _, a := range atts {
			if a.parent != rootSpan {
				t.Errorf("shard %s attempt parent = %q, want the dsweep.run root %q",
					key, a.parent, rootSpan)
			}
			if a.hedge == "true" {
				hedges++
			}
		}
		if hedges > 0 {
			hedgedShards++
			if len(atts) < 2 {
				t.Errorf("shard %s marked hedged but has %d attempt span(s)", key, len(atts))
			}
		}
	}
	if hedgedShards < 1 {
		t.Errorf("no dispatch span carries hedge=true despite %d hedges", stats.Hedges)
	}
}
