// Chaos coverage for resumable coordinator runs: the coordinator process is
// "killed" (context canceled, store handle dropped) mid-sweep and a fresh
// coordinator with a fresh store handle over the same directory resumes the
// job. The load-bearing assertion stays byte identity: replayed + live lines
// merge into exactly the JSONL a never-interrupted local run produces.
package dsweep_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bfdn/internal/dsweep"
	"bfdn/internal/jobstore"
	"bfdn/internal/server"
)

// openStore opens a fresh handle over dir, simulating a restarted process
// that shares nothing with the previous run but the directory.
func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	s, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCoordinatorKillRestartResumes(t *testing.T) {
	workers := []string{
		startWorker(t, server.Config{MaxJobs: 4, SweepWorkers: 2}, nil),
		startWorker(t, server.Config{MaxJobs: 2, SweepWorkers: 2}, nil),
	}
	plan := testPlan(40)
	dir := t.TempDir()

	// Run 1: the coordinator dies (context canceled) after six merged lines.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	partial, stats1, err := dsweep.Run(ctx, plan, workers, dsweep.Options{
		MaxShardPoints: 2,
		Store:          openStore(t, dir),
		OnLine: func(dsweep.Line) {
			if seen++; seen == 6 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run error = %v, want context.Canceled", err)
	}
	if len(partial) < 6 || len(partial) >= len(plan.Points) {
		t.Fatalf("killed run merged %d lines, want a strict partial prefix of ≥ 6", len(partial))
	}

	// The journal must already hold everything the killed run emitted: jobs
	// lists one unfinished dsweep job with shard records on disk.
	jobs, err := openStore(t, dir).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Kind != "dsweep" || jobs[0].Done {
		t.Fatalf("after kill want one unfinished dsweep job, got %+v", jobs)
	}
	if jobs[0].Records < 2 { // the cut record plus at least one shard
		t.Fatalf("after kill want journaled shards, got %d WAL records", jobs[0].Records)
	}

	// Run 2: a restarted coordinator resumes. Different MaxShardPoints on
	// purpose — the journaled cut must win over the fresh fleet's, or shard
	// boundaries would no longer match the WAL ranges.
	var order []int
	lines, stats2, err := dsweep.Run(context.Background(), plan, workers, dsweep.Options{
		MaxShardPoints: 7,
		Store:          openStore(t, dir),
		OnLine:         func(l dsweep.Line) { order = append(order, l.Point) },
	})
	if err != nil {
		t.Fatalf("resumed run: %v (stats: %s)", err, stats2)
	}
	requireIdentical(t, plan, lines)
	if stats2.Shards != stats1.Shards {
		t.Errorf("resumed run cut %d shards, killed run %d — the journaled cut was not reused", stats2.Shards, stats1.Shards)
	}
	if stats2.Replayed < 6 || stats2.Replayed >= len(plan.Points) {
		t.Errorf("Replayed = %d, want ≥ 6 and < %d", stats2.Replayed, len(plan.Points))
	}
	for i, p := range order {
		if p != i {
			t.Fatalf("resumed OnLine emitted point %d at position %d — replayed and live lines interleaved out of order", p, i)
		}
	}
	if len(order) != len(plan.Points) {
		t.Errorf("resumed OnLine saw %d lines, want %d (replayed lines must stream too)", len(order), len(plan.Points))
	}

	// Run 3: the job is done, so the plan is answered entirely from the
	// journal — no worker list needed at all.
	again, stats3, err := dsweep.Run(context.Background(), plan, nil, dsweep.Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	requireIdentical(t, plan, again)
	if stats3.Replayed != len(plan.Points) {
		t.Errorf("replay run Replayed = %d, want %d", stats3.Replayed, len(plan.Points))
	}
	if stats3.Workers != 0 || stats3.Shards != 0 {
		t.Errorf("replay run touched the fleet: stats %+v", stats3)
	}
}

func TestResumeRejectsCorruptJournal(t *testing.T) {
	workers := []string{startWorker(t, server.Config{MaxJobs: 2, SweepWorkers: 2}, nil)}
	plan := testPlan(8)
	dir := t.TempDir()

	if _, _, err := dsweep.Run(context.Background(), plan, workers, dsweep.Options{
		MaxShardPoints: 2, Store: openStore(t, dir),
	}); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	// An unknown record type anywhere before the tail is corruption, not a
	// torn append: the resume must refuse rather than guess.
	jobs, err := openStore(t, dir).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "jobs", jobs[0].ID, "wal.jsonl")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.IndexByte(data, '\n')
	tampered := append([]byte(`{"t":"bogus"}`+"\n"), data[first+1:]...)
	if err := os.WriteFile(wal, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = dsweep.Run(context.Background(), plan, workers, dsweep.Options{Store: openStore(t, dir)})
	if err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Fatalf("tampered journal error = %v, want unknown record type", err)
	}
}
