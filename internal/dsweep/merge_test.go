package dsweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

func shardLines(lo, hi int) []Line {
	ls := make([]Line, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ls = append(ls, Line{Point: i, Report: json.RawMessage(fmt.Sprintf(`{"v":%d}`, i))})
	}
	return ls
}

func TestMergerOrdersOutOfOrderShards(t *testing.T) {
	var streamed []int
	m := newMerger(func(l Line) { streamed = append(streamed, l.Point) }, nil)

	// Shards [4,7), [0,2), [7,8), [2,4) arrive out of order.
	m.deliver(4, shardLines(4, 7))
	if got := m.lines(); len(got) != 0 {
		t.Fatalf("emitted %d lines before point 0 arrived", len(got))
	}
	m.deliver(0, shardLines(0, 2))
	m.deliver(7, shardLines(7, 8))
	m.deliver(2, shardLines(2, 4))

	out := m.lines()
	if len(out) != 8 {
		t.Fatalf("merged %d lines, want 8", len(out))
	}
	for i, l := range out {
		if l.Point != i {
			t.Fatalf("line %d has point %d — not in order", i, l.Point)
		}
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(streamed, want) {
		t.Errorf("OnLine saw %v, want %v", streamed, want)
	}
}

func TestMergerDropsDuplicateDeliveries(t *testing.T) {
	m := newMerger(nil, nil)
	m.deliver(0, shardLines(0, 2))
	m.deliver(0, shardLines(0, 2)) // duplicate of an emitted shard
	m.deliver(4, shardLines(4, 6))
	m.deliver(4, shardLines(4, 6)) // duplicate of a buffered shard
	m.deliver(2, shardLines(2, 4))
	if got := len(m.lines()); got != 6 {
		t.Fatalf("merged %d lines, want 6 (duplicates must be dropped)", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	lines := []Line{
		{Point: 0, Report: json.RawMessage(`{"rounds":12}`)},
		{Point: 1, Error: "boom"},
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, lines); err != nil {
		t.Fatal(err)
	}
	want := `{"point":0,"report":{"rounds":12}}` + "\n" + `{"point":1,"error":"boom"}` + "\n"
	if b.String() != want {
		t.Errorf("WriteJSONL:\n got %q\nwant %q", b.String(), want)
	}
}
