package dsweep

import (
	"testing"
	"time"
)

func fleetOf(concs []int, maxPoints []int) []*workerState {
	fleet := make([]*workerState, len(concs))
	for i, c := range concs {
		fleet[i] = &workerState{url: string(rune('a' + i)), conc: c}
		if maxPoints != nil {
			fleet[i].cap.MaxPoints = maxPoints[i]
		}
	}
	return fleet
}

// checkCover asserts shards tile [0,n) contiguously.
func checkCover(t *testing.T, shards []*shard, n int) {
	t.Helper()
	at := 0
	for i, s := range shards {
		if s.lo != at || s.hi <= s.lo || s.hi > n {
			t.Fatalf("shard %d = [%d,%d), want lo=%d within [0,%d)", i, s.lo, s.hi, at, n)
		}
		at = s.hi
	}
	if at != n {
		t.Fatalf("shards cover [0,%d), want [0,%d)", at, n)
	}
}

func TestPartition(t *testing.T) {
	opts := Options{}.withDefaults()

	// 100 points, 2 workers × 2 slots, oversub 4 → 16 target shards of
	// ceil(100/16) = 7 points.
	shards := partition(100, fleetOf([]int{2, 2}, nil), opts)
	checkCover(t, shards, 100)
	if got := shards[0].hi - shards[0].lo; got != 7 {
		t.Errorf("shard size %d, want 7", got)
	}

	// A worker advertising a small maxPoints caps every shard.
	shards = partition(100, fleetOf([]int{2, 2}, []int{1000, 3}), opts)
	checkCover(t, shards, 100)
	for _, s := range shards {
		if s.hi-s.lo > 3 {
			t.Fatalf("shard [%d,%d) exceeds the advertised maxPoints 3", s.lo, s.hi)
		}
	}

	// MaxShardPoints caps too.
	small := opts
	small.MaxShardPoints = 2
	shards = partition(10, fleetOf([]int{1}, nil), small)
	checkCover(t, shards, 10)
	if len(shards) != 5 {
		t.Errorf("%d shards, want 5", len(shards))
	}

	// Tiny plans still cover every point with at least one shard.
	shards = partition(1, fleetOf([]int{8, 8, 8}, nil), opts)
	checkCover(t, shards, 1)

	// A bigger fleet cuts smaller shards (more slots → more shards).
	a := partition(1000, fleetOf([]int{1}, nil), opts)
	b := partition(1000, fleetOf([]int{4, 4}, nil), opts)
	if len(b) <= len(a) {
		t.Errorf("8-slot fleet cut %d shards, 1-slot fleet %d — weighting has no effect", len(b), len(a))
	}
}

func TestBackoffDur(t *testing.T) {
	opts := Options{RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond}.withDefaults()
	for attempt := 1; attempt <= 64; attempt++ {
		// Cap: min(base·2ⁿ⁻¹, max); jitter keeps the sleep in [d/2, d].
		want := opts.RetryMax
		if attempt <= 3 {
			want = opts.RetryBase << uint(attempt-1)
		}
		for i := 0; i < 20; i++ {
			d := backoffDur(opts, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
