package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is the fleet-membership half of resumable runs (DESIGN.md S30):
// a TTL-leased set of worker base URLs replacing the static -workers list.
// Every bfdnd hosts one (POST /v1/register, GET /v1/workers) and announces
// itself to its peers; a coordinator asks any member for the live fleet
// (FetchWorkers) instead of being handed a frozen list, so a worker that
// crashed and restarted — or a fresh one joining mid-campaign — is picked up
// by the next run without reconfiguration.
//
// Membership is gossip-converged rather than centrally administered: each
// heartbeat carries the sender's own view of the fleet, the registry merges
// unknown peers provisionally, and the response returns the registry's view
// for the sender to merge back (Announce). A provisional peer that never
// heartbeats directly expires after one TTL, and an expired worker is
// tombstoned for one further TTL during which gossip may not readmit it —
// only its own heartbeat can — so a dead worker cannot be kept alive by
// gossip echoing between registries.
type Registry struct {
	ttl time.Duration
	now func() time.Time // injected by tests

	mu      sync.Mutex
	workers map[string]time.Time // base URL → lease expiry
	tombs   map[string]time.Time // expired URL → tombstone expiry
}

// NewRegistry returns a registry whose leases last ttl (≤ 0 selects 15s).
// Workers are expected to heartbeat a few times per TTL; the bfdnd announce
// interval defaults to TTL/3.
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return &Registry{ttl: ttl, now: time.Now,
		workers: map[string]time.Time{}, tombs: map[string]time.Time{}}
}

// TTL returns the registry's lease duration.
func (r *Registry) TTL() time.Duration { return r.ttl }

// Heartbeat renews url's lease and merges the sender's gossiped peers: an
// unknown peer gets one provisional TTL (it must heartbeat directly to stay),
// a known peer's lease is never touched by gossip — only its own heartbeats
// renew it, so liveness information flows strictly from the worker itself.
func (r *Registry) Heartbeat(url string, peers []string) {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.expireLocked(now)
	delete(r.tombs, url) // a direct heartbeat always readmits
	r.workers[url] = now.Add(r.ttl)
	for _, p := range peers {
		p = strings.TrimRight(p, "/")
		if p == "" || p == url {
			continue
		}
		_, known := r.workers[p]
		_, dead := r.tombs[p]
		if !known && !dead {
			r.workers[p] = now.Add(r.ttl)
		}
	}
}

// Workers returns the sorted live worker URLs.
func (r *Registry) Workers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(r.now())
	urls := make([]string, 0, len(r.workers))
	for u := range r.workers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

func (r *Registry) expireLocked(now time.Time) {
	for u, exp := range r.workers {
		if now.After(exp) {
			delete(r.workers, u)
			r.tombs[u] = now.Add(r.ttl)
		}
	}
	for u, exp := range r.tombs {
		if now.After(exp) {
			delete(r.tombs, u)
		}
	}
}

// registerRequest is the POST /v1/register body: the caller's own base URL
// plus its current view of the fleet (the gossip payload).
type registerRequest struct {
	URL   string   `json:"url"`
	Peers []string `json:"peers,omitempty"`
}

// workersResponse is the body of GET /v1/workers and of every register
// response: the registry's live fleet, sorted.
type workersResponse struct {
	Workers []string `json:"workers"`
}

// ServeRegister handles POST /v1/register: renew the sender's lease, merge
// its gossip, and answer with this registry's fleet view.
func (r *Registry) ServeRegister(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
		return
	}
	var body registerRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&body); err != nil || strings.TrimRight(body.URL, "/") == "" {
		http.Error(w, `{"error":"register: body must be {\"url\":\"http://...\",\"peers\":[...]}"}`, http.StatusBadRequest)
		return
	}
	r.Heartbeat(body.URL, body.Peers)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(workersResponse{Workers: r.Workers()})
}

// ServeWorkers handles GET /v1/workers: the sorted live fleet.
func (r *Registry) ServeWorkers(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(workersResponse{Workers: r.Workers()})
}

// AnnounceOnce sends one heartbeat for self to the registry hosted at
// target, gossiping reg's current view, and merges the returned fleet back
// into reg as provisional peers. reg may be nil (a worker announcing to an
// external registry without hosting one).
func AnnounceOnce(ctx context.Context, client *http.Client, target, self string, reg *Registry) error {
	if client == nil {
		client = http.DefaultClient
	}
	var peers []string
	if reg != nil {
		peers = reg.Workers()
	}
	body, err := json.Marshal(registerRequest{URL: self, Peers: peers})
	if err != nil {
		return fmt.Errorf("dsweep: marshal register request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(target, "/")+"/v1/register", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dsweep: register with %s: %w", target, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("dsweep: register with %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("dsweep: register with %s: status %d: %s", target, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var wr workersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wr); err != nil {
		return fmt.Errorf("dsweep: register with %s: decode response: %w", target, err)
	}
	if reg != nil {
		reg.Heartbeat(self, wr.Workers)
	}
	return nil
}

// Announce heartbeats self to target every interval (≤ 0 selects TTL/3 of
// reg, or 5s without one) until ctx is canceled — the worker-side loop bfdnd
// runs when started with -announce. Failures are transient by design: the
// next tick retries, and a worker that misses a full TTL of heartbeats
// simply drops off the fleet until it reconnects.
func Announce(ctx context.Context, client *http.Client, target, self string, reg *Registry, interval time.Duration) {
	if interval <= 0 {
		if reg != nil {
			interval = reg.TTL() / 3
		}
		if interval <= 0 {
			interval = 5 * time.Second
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		// An AnnounceOnce failure is deliberately dropped: the next tick
		// retries, and a lapsed lease only parks the worker off the fleet.
		_ = AnnounceOnce(ctx, client, target, self, reg)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// FetchWorkers asks the registry hosted at target for the live fleet — the
// coordinator-side replacement for a static worker list.
func FetchWorkers(ctx context.Context, client *http.Client, target string) ([]string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(target, "/")+"/v1/workers", nil)
	if err != nil {
		return nil, fmt.Errorf("dsweep: fetch workers from %s: %w", target, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dsweep: fetch workers from %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("dsweep: fetch workers from %s: status %d: %s", target, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var wr workersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wr); err != nil {
		return nil, fmt.Errorf("dsweep: fetch workers from %s: decode: %w", target, err)
	}
	return wr.Workers, nil
}
