package bfdn

// The bench harness regenerates every experiment in the paper-reproduction
// index of DESIGN.md (the paper is a theory announcement: its single figure
// and each theorem/proposition are the artifacts; see EXPERIMENTS.md for
// paper-vs-measured). Each BenchmarkE*/BenchmarkA* runs the corresponding
// experiment from internal/exp, fails on any violated paper prediction, and
// reports the number of predictions checked. The remaining benchmarks are
// engine micro-benchmarks (cost per explored node).

import (
	"fmt"
	"math/rand"
	"testing"

	"bfdn/internal/core"
	"bfdn/internal/cte"
	"bfdn/internal/exp"
	"bfdn/internal/potential"
	"bfdn/internal/recursive"
	"bfdn/internal/sim"
	"bfdn/internal/sweep"
	"bfdn/internal/tree"
	"bfdn/internal/treemining"
	"bfdn/internal/urns"
	"bfdn/internal/writeread"
)

func benchConfig() exp.Config { return exp.Config{Seed: 1, Scale: 1} }

func runExperiment(b *testing.B, f func(exp.Config) (checks, violations int, err error)) {
	b.Helper()
	var checks int
	for i := 0; i < b.N; i++ {
		c, v, err := f(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if v > 0 {
			b.Fatalf("%d paper predictions violated", v)
		}
		checks = c
	}
	b.ReportMetric(float64(checks), "predictions")
}

// BenchmarkE1Theorem1Bound regenerates experiment E1: BFDN runtime vs the
// Theorem 1 guarantee across the workload families.
func BenchmarkE1Theorem1Bound(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E1Theorem1(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE2Figure1Regions regenerates Figure 1 (analytic region map plus
// the empirical winner map over implemented algorithms).
func BenchmarkE2Figure1Regions(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, _, out, err := exp.E2Figure1(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE3UrnsGame regenerates E3: the balls-in-urns game vs Theorem 3.
func BenchmarkE3UrnsGame(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E3Urns(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE4Lemma2Reanchors regenerates E4: per-depth re-anchor counts.
func BenchmarkE4Lemma2Reanchors(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E4Lemma2(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE5Claims regenerates E5: Claims 1–3 instrumentation.
func BenchmarkE5Claims(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E5Claims(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE6WriteRead regenerates E6: the §4.1 write-read model vs Prop 6.
func BenchmarkE6WriteRead(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E6WriteRead(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE7Breakdowns regenerates E7: adversarial break-downs vs Prop 7.
func BenchmarkE7Breakdowns(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E7Breakdowns(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE8GridGraphs regenerates E8: grid graphs vs Prop 9.
func BenchmarkE8GridGraphs(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E8GridGraphs(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE9RecursiveBFDN regenerates E9: BFDN_ℓ vs Theorem 10.
func BenchmarkE9RecursiveBFDN(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E9Recursive(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE10CTEComparison regenerates E10: overhead vs CTE and offline.
func BenchmarkE10CTEComparison(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E10CTEComparison(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE11ResourceAllocation regenerates E11: worker reassignment.
func BenchmarkE11ResourceAllocation(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E11ResourceAllocation(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE12OpenDirections regenerates E12: the level-wise O(D²)
// algorithm in the k ≥ n/D regime of the paper's open-directions section.
func BenchmarkE12OpenDirections(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E12OpenDirections(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE13ContinuousTime regenerates E13: Remark 8's continuous-time
// relaxation with heterogeneous robot speeds.
func BenchmarkE13ContinuousTime(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E13ContinuousTime(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE14CompetitiveRatio regenerates E14: the paper's original
// competitive-ratio metric across k.
func BenchmarkE14CompetitiveRatio(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E14CompetitiveRatio(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE15FourWay regenerates E15: the four-way BFDN / CTE /
// Tree-Mining / Potential race on the CTE-hard families.
func BenchmarkE15FourWay(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E15FourWay(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkE16AsyncGuarantee regenerates E16: the asynchronous guarantee
// and continuous-time lower bound on the CTE-hard families, raced against
// synchronous BFDN.
func BenchmarkE16AsyncGuarantee(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.E16AsyncGuarantee(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkA1ReanchorPolicy regenerates ablation A1: the Reanchor rule.
func BenchmarkA1ReanchorPolicy(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.A1ReanchorPolicy(cfg)
		return out.Checks, out.Violations, err
	})
}

// BenchmarkA2ReturnToRoot regenerates ablation A2: return-to-root vs
// shortcut re-anchoring.
func BenchmarkA2ReturnToRoot(b *testing.B) {
	runExperiment(b, func(cfg exp.Config) (int, int, error) {
		_, out, err := exp.A2ReturnToRoot(cfg)
		return out.Checks, out.Violations, err
	})
}

// --- sweep-engine benchmarks ---------------------------------------------

// e14SweepGrid is the E14 workload as a sweep grid: 3 tree families ×
// k ∈ {2, 8, 32, 128} × {BFDN, CTE} — the sweep the competitive-ratio
// experiment and the k-scaling comparisons of the follow-up literature run.
func e14SweepGrid(b *testing.B) []sweep.Point {
	b.Helper()
	rng := benchRng()
	trees := []*tree.Tree{
		tree.Random(4000, 12, rng),
		tree.Random(1200, 60, rng),
		tree.UnevenPaths(64, 40),
	}
	var pts []sweep.Point
	bfdnHook := core.RecycleAlgorithm()
	for _, tr := range trees {
		for _, k := range []int{2, 8, 32, 128} {
			pts = append(pts,
				sweep.Point{Tree: tr, K: k, NewAlgorithm: func(k int, _ *rand.Rand) sim.Algorithm {
					return core.NewAlgorithm(k)
				}, ResetAlgorithm: bfdnHook},
				sweep.Point{Tree: tr, K: k, NewAlgorithm: func(k int, _ *rand.Rand) sim.Algorithm {
					return cte.New(k)
				}, ResetAlgorithm: cte.Recycle})
		}
	}
	return pts
}

// BenchmarkSweepE14 runs the E14 grid through the sweep engine at 1 and 8
// workers; points/sec is the headline throughput metric and the 8-vs-1
// ratio measures parallel scaling (≈ core count on unloaded hardware).
func BenchmarkSweepE14(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pts := e14SweepGrid(b)
			b.ReportAllocs()
			b.ResetTimer()
			var last sweep.Stats
			for i := 0; i < b.N; i++ {
				results, stats := sweep.Run(pts, sweep.Options{Workers: workers, BaseSeed: 1})
				if err := sweep.JoinErrors(results); err != nil {
					b.Fatal(err)
				}
				last = stats
			}
			b.ReportMetric(last.PointsPerSec, "points/sec")
			b.ReportMetric(last.AllocsPerPoint, "allocs/point")
		})
	}
}

// benchSweepExplore executes b.N identical runs as one sweep batch, so the
// worker's world is recycled via Reset across iterations — the engine port
// of the fresh-world micro-benchmarks below.
func benchSweepExplore(b *testing.B, t *tree.Tree, k int, factory func(int, *rand.Rand) sim.Algorithm,
	reset func(sim.Algorithm, int, *rand.Rand) sim.Algorithm) {
	b.Helper()
	pts := make([]sweep.Point, b.N)
	for i := range pts {
		pts[i] = sweep.Point{Tree: t, K: k, NewAlgorithm: factory, ResetAlgorithm: reset}
	}
	b.ReportAllocs()
	b.ResetTimer()
	results, stats := sweep.Run(pts, sweep.Options{Workers: 1, BaseSeed: 1})
	if err := sweep.JoinErrors(results); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(t.N()), "nodes")
	b.ReportMetric(stats.AllocsPerPoint, "allocs/point")
}

// BenchmarkBFDNExploreSweep is BenchmarkBFDNExplore on the sweep engine's
// zero-allocation World.Reset path; the allocs/op delta against the fresh
// variant is the world-recycling saving.
func BenchmarkBFDNExploreSweep(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	benchSweepExplore(b, t, 64,
		func(k int, _ *rand.Rand) sim.Algorithm { return core.NewAlgorithm(k) },
		core.RecycleAlgorithm())
}

// BenchmarkCTEExploreSweep is the CTE workload on the engine's reuse path.
func BenchmarkCTEExploreSweep(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	benchSweepExplore(b, t, 64,
		func(k int, _ *rand.Rand) sim.Algorithm { return cte.New(k) },
		cte.Recycle)
}

// BenchmarkTreeMiningExploreSweep is the Tree-Mining workload on the
// engine's reuse path.
func BenchmarkTreeMiningExploreSweep(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	benchSweepExplore(b, t, 64,
		func(k int, _ *rand.Rand) sim.Algorithm { return treemining.New(k) },
		treemining.Recycle)
}

// BenchmarkPotentialExploreSweep is the Potential-Function workload on the
// engine's reuse path.
func BenchmarkPotentialExploreSweep(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	benchSweepExplore(b, t, 64,
		func(k int, _ *rand.Rand) sim.Algorithm { return potential.New(k) },
		potential.Recycle)
}

// --- engine micro-benchmarks ---------------------------------------------

func benchTree(b *testing.B, n, d int) *tree.Tree {
	b.Helper()
	t, err := tree.Generate(tree.FamilyRandom, n, d, benchRng())
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func benchRng() *rand.Rand { return rand.New(rand.NewSource(12345)) }

// BenchmarkBFDNExplore measures full BFDN runs on a 50k-node tree with 64
// robots; ns/op divided by n is the per-node simulation cost. Each run pays
// for a fresh world — compare allocs/op against BenchmarkBFDNExploreSweep.
func BenchmarkBFDNExplore(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorld(t, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, core.NewAlgorithm(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkCTEExplore is the same workload under the CTE baseline.
func BenchmarkCTEExplore(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorld(t, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, cte.New(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkTreeMiningExplore is the same workload under Tree-Mining.
func BenchmarkTreeMiningExplore(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorld(t, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, treemining.New(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkPotentialExplore is the same workload under the Potential
// Function Method.
func BenchmarkPotentialExplore(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorld(t, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, potential.New(64), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkBFDNL2Explore is the same workload under BFDN_2.
func BenchmarkBFDNL2Explore(b *testing.B) {
	t := benchTree(b, 50_000, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorld(t, 64)
		if err != nil {
			b.Fatal(err)
		}
		alg, err := recursive.NewBFDNL(64, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, alg, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkWriteReadExplore measures the distributed engine on a 20k tree.
func BenchmarkWriteReadExplore(b *testing.B) {
	t := benchTree(b, 20_000, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := writeread.NewEngine(t, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.N()), "nodes")
}

// BenchmarkUrnsGame measures one optimal-adversary play at k = 4096.
func BenchmarkUrnsGame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		board, err := urns.NewBoard(4096, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := urns.Play(board, urns.LeastLoadedPlayer{}, urns.StrategicAdversary{}, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeGeneration measures the random-tree generator at 100k nodes.
func BenchmarkTreeGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tree.Generate(tree.FamilyRandom, 100_000, 50, benchRng()); err != nil {
			b.Fatal(err)
		}
	}
}
