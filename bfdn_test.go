package bfdn

import (
	"strings"
	"testing"
)

func TestExploreDefaultBFDN(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 2000, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyExplored || !rep.AllAtRoot {
		t.Fatalf("incomplete: %+v", rep)
	}
	if float64(rep.Rounds) > rep.Bound {
		t.Errorf("rounds %d exceed bound %.1f", rep.Rounds, rep.Bound)
	}
	if float64(rep.Rounds) < rep.OfflineLowerBound-1 {
		t.Errorf("rounds %d below offline lower bound %.1f", rep.Rounds, rep.OfflineLowerBound)
	}
	if rep.EdgeExplorations != tr.N()-1 {
		t.Errorf("explorations = %d, want %d", rep.EdgeExplorations, tr.N()-1)
	}
}

func TestExploreWithProgress(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 800, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	rep, err := Explore(tr, 6, WithProgress(func(p Progress) { snaps = append(snaps, p) }))
	if err != nil {
		t.Fatal(err)
	}
	// The observer fires once per committed round, including all-stay rounds
	// the report's T (rounds with at least one move) does not count.
	if len(snaps) < rep.Rounds {
		t.Fatalf("observer saw %d rounds, report counts %d moving rounds", len(snaps), rep.Rounds)
	}
	for i, p := range snaps {
		if p.Round != i+1 {
			t.Fatalf("snapshot %d has round %d", i, p.Round)
		}
		if i > 0 && (p.Explored < snaps[i-1].Explored || p.Moves < snaps[i-1].Moves) {
			t.Fatalf("progress regressed at round %d: %+v after %+v", p.Round, p, snaps[i-1])
		}
	}
	last := snaps[len(snaps)-1]
	if last.Explored != tr.N() || last.Moves != rep.Moves {
		t.Fatalf("final snapshot %+v disagrees with report (n=%d, moves=%d)",
			last, tr.N(), rep.Moves)
	}
}

func TestSweepMatchesExplore(t *testing.T) {
	tr1, err := GenerateTree(FamilyRandom, 1200, 18, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := GenerateTree(FamilySpider, 120, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	points := []SweepPoint{
		{Tree: tr1, K: 8}, // zero value = BFDN
		{Tree: tr1, K: 8, Algorithm: CTE},
		{Tree: tr2, K: 4, Algorithm: BFDNRecursive, Ell: 3},
		{Tree: tr2, K: 3, Algorithm: DFS},
		{Tree: tr2, K: 16, Algorithm: Levelwise},
	}
	results, stats, err := Sweep(points, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != len(points) || stats.PointsPerSec <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	opts := [][]Option{
		nil,
		{WithAlgorithm(CTE)},
		{WithAlgorithm(BFDNRecursive), WithEll(3)},
		{WithAlgorithm(DFS)},
		{WithAlgorithm(Levelwise)},
	}
	for i, p := range points {
		if results[i].Err != nil {
			t.Fatalf("point %d: %v", i, results[i].Err)
		}
		want, err := Explore(p.Tree, p.K, opts[i]...)
		if err != nil {
			t.Fatal(err)
		}
		if got := results[i].Report; got != *want {
			t.Errorf("point %d: sweep report %+v differs from Explore %+v", i, got, *want)
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 800, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	var points []SweepPoint
	for _, k := range []int{2, 4, 8, 16} {
		points = append(points, SweepPoint{Tree: tr, K: k}, SweepPoint{Tree: tr, K: k, Algorithm: CTE})
	}
	base, _, err := Sweep(points, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := Sweep(points, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i].Report != again[i].Report {
			t.Errorf("point %d differs across worker counts", i)
		}
	}
}

func TestSweepRejectsInvalidPoints(t *testing.T) {
	tr, err := GenerateTree(FamilyPath, 10, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Sweep([]SweepPoint{{Tree: nil, K: 2}}, 1, 0); err == nil {
		t.Error("nil tree accepted")
	}
	if _, _, err := Sweep([]SweepPoint{{Tree: tr, K: 2, Algorithm: Algorithm(99)}}, 1, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := Sweep([]SweepPoint{{Tree: tr, K: 2, Algorithm: BFDNRecursive, Ell: -3}}, 1, 0); err == nil {
		t.Error("invalid ell accepted")
	}
	// A bad k is a per-point runtime failure, not a validation error.
	results, _, err := Sweep([]SweepPoint{{Tree: tr, K: 0}, {Tree: tr, K: 2}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("k=0 point did not fail")
	}
	if results[1].Err != nil || !results[1].Report.FullyExplored {
		t.Errorf("healthy point affected: %+v", results[1])
	}
}

func TestExploreAllAlgorithms(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 500, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{BFDN, BFDNRecursive, CTE, DFS} {
		rep, err := Explore(tr, 9, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if !rep.FullyExplored {
			t.Errorf("alg %d: incomplete", alg)
		}
	}
	if _, err := Explore(tr, 4, WithAlgorithm(Algorithm(99))); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExploreRecursiveEll(t *testing.T) {
	tr, err := GenerateTree(FamilySpider, 800, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ell := range []int{1, 2, 3} {
		rep, err := Explore(tr, 27, WithAlgorithm(BFDNRecursive), WithEll(ell))
		if err != nil {
			t.Fatalf("ℓ=%d: %v", ell, err)
		}
		if float64(rep.Rounds) > rep.Bound {
			t.Errorf("ℓ=%d: rounds %d exceed Theorem 10 bound %.1f", ell, rep.Rounds, rep.Bound)
		}
	}
}

func TestExploreShortcutOption(t *testing.T) {
	tr, err := GenerateTree(FamilySpider, 600, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(tr, 6, WithShortcutReanchor())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyExplored {
		t.Error("incomplete with shortcut")
	}
}

func TestExploreWithBreakdowns(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 300, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	rep, err := Explore(tr, k, WithBreakdowns(BernoulliSchedule(0.5, k, 11)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyExplored {
		t.Error("breakdown run incomplete")
	}
	if _, err := Explore(tr, k, WithBreakdowns(BernoulliSchedule(0.5, k, 11)), WithAlgorithm(CTE)); err == nil {
		t.Error("breakdowns with CTE accepted")
	}
}

func TestNewTree(t *testing.T) {
	tr, err := NewTree([]int32{-1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 4 || tr.Depth() != 2 || tr.MaxDegree() != 2 {
		t.Errorf("tree = %s", tr)
	}
	if _, err := NewTree([]int32{0}); err == nil {
		t.Error("invalid parents accepted")
	}
}

func TestGenerateTreeFamilies(t *testing.T) {
	for _, f := range Families() {
		tr, err := GenerateTree(f, 120, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tr.N() < 2 {
			t.Errorf("%s: trivial tree", f)
		}
	}
	if _, err := GenerateTree(Family("bogus"), 10, 2, 1); err == nil {
		t.Error("bogus family accepted")
	}
}

func TestExploreWriteRead(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 400, 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreWriteRead(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyExplored || !rep.AllAtRoot {
		t.Fatal("incomplete")
	}
	if float64(rep.Rounds) > rep.Bound {
		t.Errorf("rounds %d exceed bound %.1f", rep.Rounds, rep.Bound)
	}
	if rep.MaxRobotMemoryBits > rep.MemoryBudgetBits {
		t.Errorf("memory %d over budget %d", rep.MaxRobotMemoryBits, rep.MemoryBudgetBits)
	}
}

func TestExploreGrid(t *testing.T) {
	g, err := NewGrid(12, 9, []Rect{{X0: 3, Y0: 2, X1: 6, Y1: 5}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreGrid(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("grid incomplete")
	}
	if rep.TreeEdges != g.Nodes()-1 {
		t.Errorf("tree edges = %d, want %d", rep.TreeEdges, g.Nodes()-1)
	}
	if rep.TreeEdges+rep.ClosedEdges != g.Edges() {
		t.Errorf("edge accounting: %d+%d != %d", rep.TreeEdges, rep.ClosedEdges, g.Edges())
	}
	if float64(rep.Rounds) > rep.Bound {
		t.Errorf("rounds %d exceed Prop 9 bound %.1f", rep.Rounds, rep.Bound)
	}
	if _, err := NewGrid(0, 5, nil); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestPlayUrnsGame(t *testing.T) {
	res, err := PlayUrnsGame(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Steps) > res.Bound {
		t.Errorf("steps %d exceed bound %.1f", res.Steps, res.Bound)
	}
	if res.Steps < 64 {
		t.Errorf("optimal adversary lasted only %d steps", res.Steps)
	}
	if _, err := PlayUrnsGame(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAllocateWorkers(t *testing.T) {
	res, err := AllocateWorkers([]int{100, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Reassignments) > res.Bound {
		t.Errorf("reassignments %d exceed bound %.1f", res.Reassignments, res.Bound)
	}
	if res.Makespan >= 100 {
		t.Errorf("makespan %d: no speedup from reassignment", res.Makespan)
	}
	if _, err := AllocateWorkers(nil); err == nil {
		t.Error("empty task list accepted")
	}
}

func TestBoundHelpers(t *testing.T) {
	if Theorem1Bound(1000, 10, 8, 5) <= 0 {
		t.Error("Theorem1Bound not positive")
	}
	if Theorem10Bound(1000, 10, 8, 5, 2) <= 0 {
		t.Error("Theorem10Bound not positive")
	}
	if OfflineLowerBound(1000, 10, 8) != 2*999.0/8 {
		t.Error("OfflineLowerBound wrong")
	}
}

func TestFigure1Map(t *testing.T) {
	m := Figure1Map(32, 4, 60, 1, 30, 64, 20)
	for _, sym := range []string{"B", "C", "L", "legend"} {
		if !strings.Contains(m, sym) {
			t.Errorf("map missing %q", sym)
		}
	}
}
