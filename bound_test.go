package bfdn

import (
	"context"
	"errors"
	"testing"

	"bfdn/internal/bounds"
	"bfdn/internal/levelwise"
	"bfdn/internal/potential"
	"bfdn/internal/treemining"
)

// TestReportBoundAllAlgorithms pins Report.Bound to the closed-form
// guarantee for every Algorithm constant, in all three facade paths
// (Explore, ExploreTraced, Sweep). In particular CTE must report the
// Appendix A form n/log k + D, not 0.
func TestReportBoundAllAlgorithms(t *testing.T) {
	tr, err := GenerateTree(FamilyRandom, 800, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k, ell = 9, 3
	n, d, deg := tr.N(), tr.Depth(), tr.MaxDegree()
	cases := []struct {
		alg  Algorithm
		opts []Option
		want float64
	}{
		{BFDN, nil, bounds.Theorem1(n, d, k, deg)},
		{BFDNRecursive, []Option{WithEll(ell)}, bounds.Theorem10(n, d, k, deg, ell)},
		{CTE, nil, bounds.GuaranteeCTE(float64(n), float64(d), k)},
		{DFS, nil, float64(2 * (n - 1))},
		{Levelwise, nil, levelwise.Bound(n, d, k)},
		{TreeMining, nil, treemining.Bound(n, d, k)},
		{Potential, nil, potential.Bound(n, d, k)},
	}
	if len(cases) != len(Algorithms()) {
		t.Fatalf("test covers %d algorithms, facade exposes %d", len(cases), len(Algorithms()))
	}
	for _, tc := range cases {
		t.Run(tc.alg.String(), func(t *testing.T) {
			if tc.want <= 0 {
				t.Fatalf("closed-form guarantee %.2f is not positive", tc.want)
			}
			opts := append([]Option{WithAlgorithm(tc.alg)}, tc.opts...)
			rep, err := Explore(tr, k, opts...)
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if rep.Bound != tc.want {
				t.Errorf("Explore Bound = %v, want %v", rep.Bound, tc.want)
			}
			trep, _, err := ExploreTraced(tr, k, 50, opts...)
			if err != nil {
				t.Fatalf("ExploreTraced: %v", err)
			}
			if trep.Bound != tc.want {
				t.Errorf("ExploreTraced Bound = %v, want %v", trep.Bound, tc.want)
			}
			sweepEll := 0
			if tc.alg == BFDNRecursive {
				sweepEll = ell
			}
			res, _, err := Sweep([]SweepPoint{{Tree: tr, K: k, Algorithm: tc.alg, Ell: sweepEll}}, 1, 0)
			if err != nil {
				t.Fatalf("Sweep: %v", err)
			}
			if res[0].Err != nil {
				t.Fatalf("Sweep point: %v", res[0].Err)
			}
			if res[0].Report.Bound != tc.want {
				t.Errorf("Sweep Bound = %v, want %v", res[0].Report.Bound, tc.want)
			}
		})
	}
}

func TestExploreContextCancel(t *testing.T) {
	tr, err := GenerateTree(FamilyPath, 50_000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExploreContext(ctx, tr, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExploreContext error = %v, want context.Canceled", err)
	}
	// The break-down path goes through the adversary engine; it must honor
	// the context too.
	if _, err := ExploreContext(ctx, tr, 2, WithBreakdowns(BernoulliSchedule(0.5, 2, 1))); !errors.Is(err, context.Canceled) {
		t.Fatalf("breakdown ExploreContext error = %v, want context.Canceled", err)
	}
}

func TestSweepContextCancelKeepsPartials(t *testing.T) {
	tr, err := GenerateTree(FamilyPath, 8_000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]SweepPoint, 16)
	for i := range pts {
		pts[i] = SweepPoint{Tree: tr, K: 1, Algorithm: DFS}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := SweepContext(ctx, pts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("point %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}
