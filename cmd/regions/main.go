// Command regions renders the paper's Figure 1: the partition of the (n, D)
// plane by which algorithm — CTE, Yo*, BFDN or BFDN_ℓ — has the best known
// runtime guarantee for k robots.
//
// Usage:
//
//	regions -k 32 -cols 100 -rows 34
package main

import (
	"flag"
	"fmt"
	"os"

	"bfdn"
	"bfdn/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regions:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		k         = flag.Int("k", 32, "number of robots")
		n0        = flag.Float64("log2n-min", 4, "left edge: log2(n)")
		n1        = flag.Float64("log2n-max", 60, "right edge: log2(n)")
		d0        = flag.Float64("log2d-min", 1, "bottom edge: log2(D)")
		d1        = flag.Float64("log2d-max", 30, "top edge: log2(D)")
		cols      = flag.Int("cols", 96, "map width in cells")
		rows      = flag.Int("rows", 32, "map height in cells")
		empirical = flag.Bool("empirical", false, "also run BFDN/BFDN_2/CTE on generated trees and plot the measured winners (small grid)")
		maxN      = flag.Int("max-n", 20000, "empirical: cap tree size per cell")
	)
	flag.Parse()
	if *k < 2 {
		return fmt.Errorf("need k ≥ 2, got %d", *k)
	}
	if *cols < 2 || *rows < 2 {
		return fmt.Errorf("need at least a 2x2 map")
	}
	fmt.Printf("Figure 1 — best runtime guarantee per (n, D) region, k = %d\n\n", *k)
	fmt.Print(bfdn.Figure1Map(*k, *n0, *n1, *d0, *d1, *cols, *rows))
	if *empirical {
		fmt.Println()
		m, err := exp.EmpiricalRegionMap(exp.DefaultConfig(), *k, 24, 10, 14, 9, *maxN)
		if err != nil {
			return err
		}
		fmt.Print(m)
	}
	return nil
}
