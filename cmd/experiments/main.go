// Command experiments runs the full reproduction suite E1–E16 and the
// ablations A1–A2 (the experiment index of DESIGN.md) and prints one table
// per experiment, flagging any violated paper prediction. Experiments that
// fail do not suppress the others: every completed table is printed and all
// errors are reported together.
//
// Usage:
//
//	experiments                    # CI-sized run
//	experiments -scale 3           # larger workloads
//	experiments -csv               # machine-readable output
//	experiments -sweepstats        # per-sweep engine throughput on stderr
//	experiments -metrics -         # dump suite-wide engine metrics to stderr
//	experiments -metrics m.prom    # ... or to a file, Prometheus text format
//	experiments -cpuprofile cpu.pp # write a pprof CPU profile
//	experiments -memprofile mem.pp # write a pprof heap profile
//
// With -workers the command becomes a distributed sweep driver instead of
// the local suite: it builds a benchmark grid (sized by -scale, seeded by
// -seed), dispatches it across the given bfdnd instances, streams the merged
// JSONL to stdout and a coordinator summary to stderr. The merged output is
// byte-identical to what a single local worker would produce for the same
// grid, so two fleets — or a fleet and a single daemon — can be diffed.
//
//	experiments -workers http://a:8080,http://b:8080           # distribute
//	experiments -workers http://a:8080 -scale 4 -hedge         # hedged tail
//	experiments -registry http://reg:8080 -store ./jobs        # live fleet,
//	                                                           # resumable
//
// With -registry the fleet is fetched live from a bfdnd registry's
// GET /v1/workers instead of being listed by hand; with -store the
// coordinator journals the run into a persistent job store, so rerunning the
// identical command after a crash replays finished shards from disk and
// dispatches only the remainder (OPERATIONS.md §6).
//
// -workers is incompatible with -sweepworkers: remote daemons size their own
// engine pools, so combining the two flags is rejected.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"bfdn"
	"bfdn/internal/dsweep"
	"bfdn/internal/exp"
	"bfdn/internal/obs"
	"bfdn/internal/obs/tracing"
	"bfdn/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale      = flag.Int("scale", 1, "workload scale multiplier")
		seed       = flag.Int64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently")
		workers    = flag.Int("sweepworkers", 0, "sweep-engine workers per experiment (0 = GOMAXPROCS)")
		sweepStats = flag.Bool("sweepstats", false, "print per-sweep engine stats to stderr")
		metricsOut = flag.String("metrics", "", `dump suite-wide engine metrics in Prometheus text format ("-" = stderr)`)
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
		fleet      = flag.String("workers", "", "comma-separated bfdnd base URLs: run a distributed sweep benchmark instead of the suite")
		registry   = flag.String("registry", "", "bfdnd registry base URL: fetch the live fleet from GET /v1/workers instead of -workers")
		store      = flag.String("store", "", "with -workers/-registry: journal the run into this job store directory so a crashed coordinator resumes instead of recomputing")
		hedge      = flag.Bool("hedge", false, "with -workers: hedge straggler tail shards on idle workers")
		traceOut   = flag.String("trace", "", `with -workers: dump the coordinator's spans as JSONL to this file ("-" = stderr)`)
	)
	flag.Parse()
	if *scale < 1 {
		return fmt.Errorf("need scale ≥ 1, got %d", *scale)
	}
	if *parallel < 1 {
		return fmt.Errorf("need -parallel ≥ 1, got %d", *parallel)
	}
	if *workers < 0 {
		return fmt.Errorf("need -sweepworkers ≥ 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	sweepworkersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sweepworkers" {
			sweepworkersSet = true
		}
	})
	if err := validateDistFlags(*fleet, *registry, *store, sweepworkersSet, *hedge); err != nil {
		return err
	}
	if *fleet != "" || *registry != "" {
		var urls []string
		if *fleet != "" {
			urls = strings.Split(*fleet, ",")
		} else {
			var err error
			if urls, err = dsweep.FetchWorkers(context.Background(), nil, *registry); err != nil {
				return err
			}
			if len(urls) == 0 {
				return fmt.Errorf("registry %s reports an empty fleet (workers announce with bfdnd -announce %s -advertise <their-url>)", *registry, *registry)
			}
		}
		return runDistributed(urls, *scale, *seed, *hedge, *traceOut, *store)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale, Workers: *workers}
	if *sweepStats {
		var mu sync.Mutex
		cfg.StatsSink = func(label string, s sweep.Stats) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "sweep %s: %s\n", label, s)
		}
	}
	// With -metrics, every sweep in the suite merges its point-latency
	// histograms and totals into one registry, dumped after the run.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Recorder = sweep.NewRecorder(reg)
	}
	reports, err := exp.RunAllParallel(cfg, *parallel)
	if reg != nil {
		var w io.Writer = os.Stderr
		if *metricsOut != "-" {
			f, ferr := os.Create(*metricsOut)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			w = f
		}
		if werr := reg.WritePrometheus(w); werr != nil {
			return fmt.Errorf("write metrics: %w", werr)
		}
	}
	violations := 0
	for _, r := range reports {
		fmt.Printf("=== %s — %s ===\n", r.ID, r.Description)
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.Render())
		}
		if r.Extra != "" && !*csv {
			fmt.Println()
			fmt.Print(r.Extra)
		}
		fmt.Printf("predictions: %d checked, %d violated\n", r.Outcome.Checks, r.Outcome.Violations)
		for _, note := range r.Outcome.Notes {
			fmt.Println("  VIOLATION:", note)
		}
		fmt.Println()
		violations += r.Outcome.Violations
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			return perr
		}
	}
	if err != nil {
		return fmt.Errorf("%d/%d experiments completed; failures:\n%w",
			len(reports), len(reports)+countJoined(err), err)
	}
	if violations > 0 {
		return fmt.Errorf("%d paper predictions violated", violations)
	}
	fmt.Println("all paper predictions hold")
	return nil
}

// validateDistFlags rejects flag combinations that silently do nothing:
// -sweepworkers tunes the local engine, which a distributed run never starts
// (remote daemons size their own pools), -hedge and -store only mean anything
// with a fleet, and -workers/-registry are two sources for the same list.
func validateDistFlags(fleet, registry, store string, sweepworkersSet, hedge bool) error {
	if fleet != "" && registry != "" {
		return fmt.Errorf("-workers and -registry both name the fleet: use one (a static list, or a registry to fetch it from)")
	}
	if fleet == "" && registry == "" {
		if hedge {
			return fmt.Errorf("-hedge requires -workers or -registry (it hedges shards across a fleet)")
		}
		if store != "" {
			return fmt.Errorf("-store requires -workers or -registry (it journals a distributed run; local suite runs are not journaled)")
		}
		return nil
	}
	if sweepworkersSet {
		return fmt.Errorf("-sweepworkers cannot be combined with a distributed run: remote bfdnd instances size their own sweep pools (set -sweepworkers on each daemon instead)")
	}
	return nil
}

// distGrid is the distributed benchmark workload: families × robot counts,
// with the algorithm cycling so every point family/alg pair appears, scaled
// by repeating the grid at growing tree sizes with fresh tree seeds.
func distGrid(scale int) []bfdn.SweepSpec {
	families := []bfdn.Family{bfdn.FamilyPath, bfdn.FamilyBinary, bfdn.FamilySpider, bfdn.FamilyComb, bfdn.FamilyRandom}
	algs := []bfdn.Algorithm{bfdn.BFDN, bfdn.BFDNRecursive, bfdn.CTE, bfdn.DFS, bfdn.TreeMining, bfdn.Potential}
	ks := []int{1, 2, 4, 8}
	specs := make([]bfdn.SweepSpec, 0, scale*len(families)*len(ks))
	for rep := 0; rep < scale; rep++ {
		for fi, f := range families {
			for ki, k := range ks {
				specs = append(specs, bfdn.SweepSpec{
					Family:    f,
					N:         800 + 400*rep + 50*fi,
					TreeSeed:  int64(rep),
					K:         k,
					Algorithm: algs[(fi+ki)%len(algs)],
				})
			}
		}
	}
	return specs
}

// runDistributed dispatches the benchmark grid across the fleet, streaming
// merged lines to stdout as they become final. Ctrl-C cancels the run and
// every in-flight worker request. With traceOut set, the coordinator records
// the run as one trace (dispatch/retry/hedge spans, traceparent propagated
// to the workers) and dumps its spans as JSONL when the run ends.
func runDistributed(urls []string, scale int, seed int64, hedge bool, traceOut, storeDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	var encErr error
	opts := []bfdn.DistOption{
		bfdn.WithDistOnLine(func(l bfdn.DistLine) {
			if encErr == nil {
				encErr = enc.Encode(l)
			}
		}),
	}
	if hedge {
		opts = append(opts, bfdn.WithDistHedging())
	}
	if storeDir != "" {
		// The journal keys off the content-addressed plan, so resuming after
		// a crash is just rerunning the identical command: finished shards
		// replay from disk, the rest dispatch to whatever fleet is up now.
		js, err := bfdn.OpenJobStore(storeDir)
		if err != nil {
			return fmt.Errorf("open job store: %w", err)
		}
		opts = append(opts, bfdn.WithDistStore(js))
	}
	var tracer *tracing.Tracer
	if traceOut != "" {
		tracer = tracing.New(tracing.Config{})
		opts = append(opts, bfdn.WithDistTracer(tracer))
	}
	_, stats, err := bfdn.SweepDistributed(ctx, distGrid(scale), urls, seed, opts...)
	if err != nil {
		return fmt.Errorf("distributed sweep: %w", err)
	}
	if encErr != nil {
		return fmt.Errorf("write output: %w", encErr)
	}
	fmt.Fprintln(os.Stderr, "distributed sweep:", stats)
	if stats.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "resumed: %d of %d points replayed from the journal\n", stats.Replayed, stats.Points)
	}
	if tracer != nil {
		if err := dumpTrace(tracer, traceOut); err != nil {
			return err
		}
	}
	return nil
}

// dumpTrace writes the coordinator tracer's spans as JSONL to path ("-" =
// stderr): the coordinator half of a fleet trace, joined with the workers'
// GET /debug/traces exports by trace ID.
func dumpTrace(tr *tracing.Tracer, path string) error {
	if path == "-" {
		return tr.WriteJSONL(os.Stderr, tracing.TraceID{})
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f, tracing.TraceID{}); err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	return f.Close()
}

// countJoined reports how many errors err bundles (errors.Join exposes them
// via Unwrap() []error; a plain error counts as one).
func countJoined(err error) int {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return len(u.Unwrap())
	}
	return 1
}
