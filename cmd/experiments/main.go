// Command experiments runs the full reproduction suite E1–E11 and the
// ablations A1–A2 (the experiment index of DESIGN.md) and prints one table
// per experiment, flagging any violated paper prediction.
//
// Usage:
//
//	experiments            # CI-sized run
//	experiments -scale 3   # larger workloads
//	experiments -csv       # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"bfdn/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Int("scale", 1, "workload scale multiplier")
		seed     = flag.Int64("seed", 1, "workload seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently")
	)
	flag.Parse()
	if *scale < 1 {
		return fmt.Errorf("need scale ≥ 1, got %d", *scale)
	}
	reports, err := exp.RunAllParallel(exp.Config{Seed: *seed, Scale: *scale}, *parallel)
	if err != nil {
		return err
	}
	violations := 0
	for _, r := range reports {
		fmt.Printf("=== %s — %s ===\n", r.ID, r.Description)
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.Render())
		}
		if r.Extra != "" && !*csv {
			fmt.Println()
			fmt.Print(r.Extra)
		}
		fmt.Printf("predictions: %d checked, %d violated\n", r.Outcome.Checks, r.Outcome.Violations)
		for _, note := range r.Outcome.Notes {
			fmt.Println("  VIOLATION:", note)
		}
		fmt.Println()
		violations += r.Outcome.Violations
	}
	if violations > 0 {
		return fmt.Errorf("%d paper predictions violated", violations)
	}
	fmt.Println("all paper predictions hold")
	return nil
}
