// Command experiments runs the full reproduction suite E1–E14 and the
// ablations A1–A2 (the experiment index of DESIGN.md) and prints one table
// per experiment, flagging any violated paper prediction. Experiments that
// fail do not suppress the others: every completed table is printed and all
// errors are reported together.
//
// Usage:
//
//	experiments                    # CI-sized run
//	experiments -scale 3           # larger workloads
//	experiments -csv               # machine-readable output
//	experiments -sweepstats        # per-sweep engine throughput on stderr
//	experiments -metrics -         # dump suite-wide engine metrics to stderr
//	experiments -metrics m.prom    # ... or to a file, Prometheus text format
//	experiments -cpuprofile cpu.pp # write a pprof CPU profile
//	experiments -memprofile mem.pp # write a pprof heap profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"bfdn/internal/exp"
	"bfdn/internal/obs"
	"bfdn/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale      = flag.Int("scale", 1, "workload scale multiplier")
		seed       = flag.Int64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently")
		workers    = flag.Int("sweepworkers", 0, "sweep-engine workers per experiment (0 = GOMAXPROCS)")
		sweepStats = flag.Bool("sweepstats", false, "print per-sweep engine stats to stderr")
		metricsOut = flag.String("metrics", "", `dump suite-wide engine metrics in Prometheus text format ("-" = stderr)`)
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *scale < 1 {
		return fmt.Errorf("need scale ≥ 1, got %d", *scale)
	}
	if *parallel < 1 {
		return fmt.Errorf("need -parallel ≥ 1, got %d", *parallel)
	}
	if *workers < 0 {
		return fmt.Errorf("need -sweepworkers ≥ 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale, Workers: *workers}
	if *sweepStats {
		var mu sync.Mutex
		cfg.StatsSink = func(label string, s sweep.Stats) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "sweep %s: %s\n", label, s)
		}
	}
	// With -metrics, every sweep in the suite merges its point-latency
	// histograms and totals into one registry, dumped after the run.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Recorder = sweep.NewRecorder(reg)
	}
	reports, err := exp.RunAllParallel(cfg, *parallel)
	if reg != nil {
		var w io.Writer = os.Stderr
		if *metricsOut != "-" {
			f, ferr := os.Create(*metricsOut)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			w = f
		}
		if werr := reg.WritePrometheus(w); werr != nil {
			return fmt.Errorf("write metrics: %w", werr)
		}
	}
	violations := 0
	for _, r := range reports {
		fmt.Printf("=== %s — %s ===\n", r.ID, r.Description)
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.Render())
		}
		if r.Extra != "" && !*csv {
			fmt.Println()
			fmt.Print(r.Extra)
		}
		fmt.Printf("predictions: %d checked, %d violated\n", r.Outcome.Checks, r.Outcome.Violations)
		for _, note := range r.Outcome.Notes {
			fmt.Println("  VIOLATION:", note)
		}
		fmt.Println()
		violations += r.Outcome.Violations
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			return perr
		}
	}
	if err != nil {
		return fmt.Errorf("%d/%d experiments completed; failures:\n%w",
			len(reports), len(reports)+countJoined(err), err)
	}
	if violations > 0 {
		return fmt.Errorf("%d paper predictions violated", violations)
	}
	fmt.Println("all paper predictions hold")
	return nil
}

// countJoined reports how many errors err bundles (errors.Join exposes them
// via Unwrap() []error; a plain error counts as one).
func countJoined(err error) int {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return len(u.Unwrap())
	}
	return 1
}
