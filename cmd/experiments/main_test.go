package main

import (
	"strings"
	"testing"
)

func TestValidateDistFlags(t *testing.T) {
	cases := []struct {
		name            string
		fleet           string
		registry        string
		store           string
		sweepworkersSet bool
		hedge           bool
		wantErr         string
	}{
		{name: "suite run", fleet: "", sweepworkersSet: false},
		{name: "suite run with sweepworkers", fleet: "", sweepworkersSet: true},
		{name: "fleet run", fleet: "http://a:8080,http://b:8080"},
		{name: "fleet run with hedge", fleet: "http://a:8080", hedge: true},
		{name: "registry run", registry: "http://reg:8080"},
		{name: "registry run with store", registry: "http://reg:8080", store: "./jobs"},
		{name: "fleet run with store", fleet: "http://a:8080", store: "./jobs"},
		{
			name: "fleet plus sweepworkers is rejected", fleet: "http://a:8080",
			sweepworkersSet: true, wantErr: "-sweepworkers cannot be combined with a distributed run",
		},
		{
			name: "registry plus sweepworkers is rejected", registry: "http://reg:8080",
			sweepworkersSet: true, wantErr: "-sweepworkers cannot be combined with a distributed run",
		},
		{
			name: "fleet plus registry is rejected", fleet: "http://a:8080",
			registry: "http://reg:8080", wantErr: "-workers and -registry both name the fleet",
		},
		{
			name: "hedge without fleet is rejected", hedge: true,
			wantErr: "-hedge requires -workers or -registry",
		},
		{
			name: "store without fleet is rejected", store: "./jobs",
			wantErr: "-store requires -workers or -registry",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateDistFlags(tc.fleet, tc.registry, tc.store, tc.sweepworkersSet, tc.hedge)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestDistGridScales(t *testing.T) {
	one := distGrid(1)
	if len(one) == 0 {
		t.Fatal("empty grid at scale 1")
	}
	for i, s := range one {
		if s.K < 1 || s.N < 1 || s.Family == "" {
			t.Fatalf("spec %d is degenerate: %+v", i, s)
		}
	}
	if three := distGrid(3); len(three) != 3*len(one) {
		t.Errorf("scale 3 grid has %d specs, want %d", len(three), 3*len(one))
	}
}
