// Command urnsgame plays the §3 balls-in-urns game — the least-loaded
// player against the optimal adversary — and reports the game length
// against the Theorem 3 bound; with -tasks it instead runs the worker
// reassignment interpretation on random task lengths.
//
// Usage:
//
//	urnsgame -k 256
//	urnsgame -k 64 -delta 8
//	urnsgame -k 100 -tasks -maxlen 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bfdn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "urnsgame:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		k      = flag.Int("k", 64, "number of urns / workers")
		delta  = flag.Int("delta", 0, "stopping threshold Δ (0 = k)")
		tasks  = flag.Bool("tasks", false, "run the worker/task interpretation instead of the raw game")
		maxlen = flag.Int("maxlen", 1000, "tasks: maximum random task length")
		seed   = flag.Int64("seed", 1, "tasks: length seed")
	)
	flag.Parse()
	if *delta == 0 {
		*delta = *k
	}
	if *tasks {
		rng := rand.New(rand.NewSource(*seed))
		lengths := make([]int, *k)
		for i := range lengths {
			lengths[i] = 1 + rng.Intn(*maxlen)
		}
		res, err := bfdn.AllocateWorkers(lengths)
		if err != nil {
			return err
		}
		fmt.Printf("workers/tasks   k = %d, lengths ∈ [1,%d]\n", *k, *maxlen)
		fmt.Printf("makespan        %d rounds\n", res.Makespan)
		fmt.Printf("reassignments   %d (bound k·logk+2k = %.1f)\n", res.Reassignments, res.Bound)
		return nil
	}
	res, err := bfdn.PlayUrnsGame(*k, *delta)
	if err != nil {
		return err
	}
	fmt.Printf("urns game       k = %d, Δ = %d\n", *k, *delta)
	fmt.Printf("player          least-loaded (the paper's strategy)\n")
	fmt.Printf("adversary       optimal (option (a) first, then max-load option (b))\n")
	fmt.Printf("game length     %d steps\n", res.Steps)
	fmt.Printf("Theorem 3 bound %.1f steps (%.0f%% used)\n", res.Bound, 100*float64(res.Steps)/res.Bound)
	return nil
}
