// Command bfdnd is the exploration service daemon: a long-running HTTP
// server over the bfdn facade and the parallel sweep engine, with bounded
// admission, per-request deadlines, end-to-end cancellation, and a graceful
// SIGTERM drain.
//
// Usage:
//
//	bfdnd                          # listen on :8080
//	bfdnd -addr :9000 -jobs 8      # 8 concurrent simulation jobs
//	bfdnd -queue 256 -timeout 30s  # deeper queue, tighter default deadline
//	bfdnd -logjson                 # structured logs as JSON lines
//
// Endpoints:
//
//	POST /v1/explore   one exploration run, JSON report
//	POST /v1/sweep     a (algorithm × tree × k) grid, streamed as JSONL
//	POST /v1/asyncsweep  a continuous-time (tree × fleet × algorithm ×
//	                   latency) grid on the async engine, streamed as JSONL
//	POST /v1/resume    re-drive a stored sweep job from its journal (-store)
//	GET  /v1/jobs      list the persistent job store (-store)
//	POST /v1/register  worker heartbeat into the fleet registry (-registry)
//	GET  /v1/workers   live fleet listing from the registry (-registry)
//	GET  /healthz      liveness + load snapshot (503 while draining)
//	GET  /capacity     admission limits + load, for distributed coordinators
//	GET  /metrics      Prometheus text exposition (bfdnd_*)
//	GET  /debug/vars   thin expvar-compatible view of the same counters
//	GET  /debug/pprof/ net/http/pprof profiles
//	GET  /debug/traces JSONL span export (?trace= filters one trace)
//	GET  /debug/exemplars  latency-bucket → recent trace ID exemplars
//
// Logging is structured (log/slog) on stderr: text by default, JSON lines
// with -logjson. Every admitted job logs start and completion records keyed
// by the job ID also returned in the X-Bfdnd-Job response header; with
// tracing enabled (-tracebuf > 0) those records also carry the trace and
// span IDs, and inbound W3C traceparent headers (a distributed coordinator's
// dispatch spans) are continued rather than starting fresh traces.
//
// On SIGINT/SIGTERM the daemon stops admitting jobs, drains in-flight work
// (bounded by -drain), then closes the listener.
//
// Several bfdnd instances form a sweep fleet: the distributed coordinator
// (bfdn.SweepDistributed, or experiments -workers) reads each instance's
// GET /capacity, shards a sweep across the fleet, and merges the streams
// back into one byte-identical JSONL. With -registry one instance hosts the
// fleet roster instead, workers announce themselves into it (-announce
// -advertise), and coordinators read GET /v1/workers in place of a static
// worker list. With -store the daemon journals every sweep into a persistent
// job store, so a crashed or interrupted job resumes from its journal
// (POST /v1/resume, or simply resubmitting the identical request) instead of
// recomputing. OPERATIONS.md is the fleet runbook; §6 covers crash recovery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfdn"
	"bfdn/internal/dsweep"
	"bfdn/internal/obs/tracing"
	"bfdn/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfdnd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		jobs         = flag.Int("jobs", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admitted jobs waiting for a slot before 429")
		sweepWorkers = flag.Int("sweepworkers", 0, "sweep-engine workers per job (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 60*time.Second, "default per-request simulation deadline")
		maxTimeout   = flag.Duration("maxtimeout", 10*time.Minute, "cap on client-requested deadlines")
		maxNodes     = flag.Int("maxnodes", 2_000_000, "largest tree a request may ask for")
		maxPoints    = flag.Int("maxpoints", 10_000, "most points in one sweep request")
		drain        = flag.Duration("drain", 30*time.Second, "grace period for in-flight work on shutdown")
		logJSON      = flag.Bool("logjson", false, "emit structured logs as JSON lines (default: text)")
		traceBuf     = flag.Int("tracebuf", 0, "span ring-buffer capacity; 0 disables tracing")
		traceSample  = flag.Int("tracesample", 64, "record 1 in N per-point spans inside traced sweeps")
		storeDir     = flag.String("store", "", "persistent job store directory; empty disables /v1/resume and /v1/jobs")
		registry     = flag.Bool("registry", false, "host the fleet registry (/v1/register, /v1/workers) on this daemon")
		registryTTL  = flag.Duration("registry-ttl", 15*time.Second, "worker lease TTL for the hosted registry")
		announce     = flag.String("announce", "", "registry base URL to heartbeat this worker into (needs -advertise)")
		advertise    = flag.String("advertise", "", "externally reachable base URL of this daemon, gossiped to peers")
	)
	flag.Parse()
	if *jobs < 0 || *sweepWorkers < 0 {
		return fmt.Errorf("need -jobs ≥ 0 and -sweepworkers ≥ 0 (0 = GOMAXPROCS), got %d and %d", *jobs, *sweepWorkers)
	}
	if *queue < 1 || *maxNodes < 1 || *maxPoints < 1 {
		return fmt.Errorf("need -queue, -maxnodes and -maxpoints ≥ 1")
	}
	if *traceBuf < 0 || *traceSample < 0 {
		return fmt.Errorf("need -tracebuf ≥ 0 and -tracesample ≥ 0, got %d and %d", *traceBuf, *traceSample)
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	var tracer *tracing.Tracer
	if *traceBuf > 0 {
		tracer = tracing.New(tracing.Config{Capacity: *traceBuf, SampleEvery: *traceSample})
	}

	var store *bfdn.JobStore
	if *storeDir != "" {
		var err error
		if store, err = bfdn.OpenJobStore(*storeDir); err != nil {
			return fmt.Errorf("open job store: %w", err)
		}
	}
	var reg *dsweep.Registry
	if *registry {
		reg = dsweep.NewRegistry(*registryTTL)
	}
	if *announce != "" && *advertise == "" {
		return errors.New("-announce needs -advertise (the URL peers reach this daemon at)")
	}

	srv := server.New(server.Config{
		MaxJobs:        *jobs,
		QueueDepth:     *queue,
		SweepWorkers:   *sweepWorkers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxPoints:      *maxPoints,
		Logger:         logger,
		Tracer:         tracer,
		Store:          store,
		Registry:       reg,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *announce != "" {
		// The heartbeat loop keeps this worker's lease alive in the remote
		// registry and merges the registry's fleet view back, so every
		// announcing worker converges on the same roster.
		go dsweep.Announce(ctx, http.DefaultClient, *announce, *advertise, reg, *registryTTL/3)
		logger.Info("announcing", "registry", *announce, "advertise", *advertise)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "jobs", *jobs, "queue", *queue)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "grace", drain.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain jobs first — new work is refused with 503 while existing runs
	// finish — then close the listener and let idle connections go.
	if err := srv.Shutdown(dctx); err != nil {
		logger.Warn("drain incomplete", "err", err.Error())
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("listener shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("shutdown complete")
	return nil
}
