// Command bfdnsim runs one collaborative-exploration simulation and prints
// the run report against the applicable guarantee.
//
// Usage:
//
//	bfdnsim -family random -n 10000 -d 40 -k 16 -algo bfdn
//	bfdnsim -family spider -n 2000 -d 200 -k 27 -algo bfdnl -ell 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bfdn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bfdnsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family   = flag.String("family", "random", "tree family (path star binary ternary spider comb caterpillar broom random randbinary uneven)")
		n        = flag.Int("n", 10000, "approximate number of nodes")
		d        = flag.Int("d", 40, "target depth")
		k        = flag.Int("k", 16, "number of robots")
		algo     = flag.String("algo", "bfdn", "algorithm: "+strings.Join(bfdn.AlgorithmNames(), " | "))
		ell      = flag.Int("ell", 2, "recursion parameter for bfdnl")
		seed     = flag.Int64("seed", 1, "workload seed")
		shortcut = flag.Bool("shortcut", false, "BFDN: re-anchor in place instead of via the root")
		pBlock   = flag.Float64("breakdown", 0, "adversarial break-downs: allow each robot to move with this probability (0 = off)")
		compare  = flag.Bool("compare", false, "run every algorithm on the workload and print a comparison")
		showTrc  = flag.Bool("trace", false, "record the run and print the exploration progress curve")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	t, err := bfdn.GenerateTree(bfdn.Family(*family), *n, *d, *seed)
	if err != nil {
		return err
	}
	if *compare {
		return runCompare(t, *k, *ell)
	}
	alg, err := bfdn.ParseAlgorithm(*algo)
	if err != nil {
		return err
	}
	opts := []bfdn.Option{bfdn.WithAlgorithm(alg)}
	if alg == bfdn.BFDNRecursive {
		opts = append(opts, bfdn.WithEll(*ell))
	}
	if *shortcut {
		opts = append(opts, bfdn.WithShortcutReanchor())
	}
	if *pBlock > 0 {
		opts = append(opts, bfdn.WithBreakdowns(bfdn.BernoulliSchedule(*pBlock, *k, *seed)))
	}
	var rep *bfdn.Report
	if *showTrc && *pBlock == 0 {
		var trc *bfdn.Trace
		every := rep0every(*n)
		rep, trc, err = bfdn.ExploreTraced(t, *k, every, opts...)
		if err != nil {
			return err
		}
		defer func() {
			fmt.Printf("progress  %s (1 → %d nodes)\n", trc.ProgressSparkline(60), t.N())
		}()
	} else {
		rep, err = bfdn.Explore(t, *k, opts...)
		if err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("tree      %s (family %s)\n", t, *family)
	fmt.Printf("robots    k = %d, algorithm %s\n", *k, *algo)
	fmt.Printf("rounds    %d\n", rep.Rounds)
	if rep.Bound > 0 {
		fmt.Printf("guarantee %.1f (%.0f%% used)\n", rep.Bound, 100*float64(rep.Rounds)/rep.Bound)
	}
	fmt.Printf("offline   ≥ %.1f rounds\n", rep.OfflineLowerBound)
	fmt.Printf("moves     %d total, %d first-time edge explorations\n", rep.Moves, rep.EdgeExplorations)
	fmt.Printf("complete  explored=%v home=%v\n", rep.FullyExplored, rep.AllAtRoot)
	return nil
}

// rep0every picks a trace sampling rate that keeps memory modest.
func rep0every(n int) int {
	if n <= 5000 {
		return 1
	}
	return n / 5000
}

// runCompare runs every algorithm from bfdn.Algorithms() on the same
// workload, so new facade entries appear here without a code change.
func runCompare(t *bfdn.Tree, k, ell int) error {
	fmt.Printf("tree %s, k = %d\n\n", t, k)
	fmt.Printf("%-14s %10s %12s %10s\n", "algorithm", "rounds", "bound", "moves")
	type compareRow struct {
		name string
		opts []bfdn.Option
	}
	var rows []compareRow
	for _, a := range bfdn.Algorithms() {
		row := compareRow{name: a.String(), opts: []bfdn.Option{bfdn.WithAlgorithm(a)}}
		switch a {
		case bfdn.BFDNRecursive:
			row.name = fmt.Sprintf("bfdnl(ℓ=%d)", ell)
			row.opts = append(row.opts, bfdn.WithEll(ell))
		case bfdn.DFS:
			row.name = "dfs(k=1)"
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		rep, err := bfdn.Explore(t, k, row.opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		bound := "-"
		if rep.Bound > 0 {
			bound = fmt.Sprintf("%.0f", rep.Bound)
		}
		fmt.Printf("%-14s %10d %12s %10d\n", row.name, rep.Rounds, bound, rep.Moves)
	}
	fmt.Printf("\noffline lower bound: %.0f rounds\n", bfdn.OfflineLowerBound(t.N(), t.Depth(), k))
	return nil
}
